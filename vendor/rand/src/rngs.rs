//! Named generator types mirroring `rand::rngs`.

use crate::xoshiro::Xoshiro256PlusPlus;
use crate::{RngCore, SeedableRng};

/// The workspace's standard seeded generator (xoshiro256++ here; upstream
/// uses ChaCha12 — streams differ, determinism per seed is preserved).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng(Xoshiro256PlusPlus);

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.0.next_u64() >> 32) as u32
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        Self(Xoshiro256PlusPlus::from_seed_bytes(seed))
    }
}

/// A small fast generator — identical to [`StdRng`] in this stand-in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng(Xoshiro256PlusPlus);

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.0.next_u64() >> 32) as u32
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        Self(Xoshiro256PlusPlus::from_seed_bytes(seed))
    }
}
