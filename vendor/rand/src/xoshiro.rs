//! xoshiro256++ core generator and SplitMix64 seed expander.

/// SplitMix64 — used to expand small seeds into full generator state.
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the workhorse generator behind `StdRng`/`SmallRng`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Builds the generator from 32 seed bytes (zero state is corrected to a
    /// fixed non-zero constant — xoshiro has a single absorbing zero state).
    pub fn from_seed_bytes(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            let mut sm = SplitMix64::new(0x5DEE_CE66_D1CE_4E5B);
            for v in &mut s {
                *v = sm.next();
            }
        }
        Self { s }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
