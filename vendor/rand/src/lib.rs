//! Offline stand-in for the `rand` crate (see `Cargo.toml` description).
//!
//! Implements the workspace's working set of the rand 0.8 API:
//!
//! * [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`, `sample`, `fill`)
//! * [`SeedableRng`] (`seed_from_u64`, `from_seed`, `from_entropy`)
//! * [`rngs::StdRng`], [`rngs::SmallRng`], [`thread_rng`]
//! * [`distributions::Uniform`] / [`distributions::Distribution`] /
//!   [`distributions::Standard`]
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! strong for simulation workloads and fully deterministic per seed. Streams
//! are *not* bit-compatible with upstream `StdRng` (ChaCha12); seed-derived
//! test expectations must be statistical, not exact.

pub mod distributions;
pub mod rngs;
mod xoshiro;

pub use rngs::{SmallRng, StdRng};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator seedable from a fixed state.
pub trait SeedableRng: Sized {
    /// Seed type (byte array for compatibility with rand 0.8).
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = xoshiro::SplitMix64::new(state);
        for b in seed.as_mut().chunks_mut(8) {
            let v = sm.next().to_le_bytes();
            let n = b.len();
            b.copy_from_slice(&v[..n]);
        }
        Self::from_seed(seed)
    }

    /// Creates a generator from OS entropy — here, from the system clock
    /// (the workspace only uses seeded generators on reproducible paths).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(nanos)
    }
}

/// High-level convenience methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a range (`low..high` or `low..=high`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} outside [0, 1]");
        let v: f64 = self.gen();
        v < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }

    /// Fills a slice with standard-distribution values.
    fn fill<T>(&mut self, dest: &mut [T])
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        for v in dest.iter_mut() {
            *v = self.gen();
        }
    }
}

impl<R: RngCore> Rng for R {}

/// A fresh clock-seeded generator (upstream's thread-local equivalent).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let g = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&g));
        }
    }

    #[test]
    fn uniform_distribution_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = Uniform::new(-1.0f32, 1.0);
        let di = Uniform::new_inclusive(-3.0f64, 3.0);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((-1.0..1.0).contains(&x));
            let y = di.sample(&mut rng);
            assert!((-3.0..=3.0).contains(&y));
        }
    }

    #[test]
    fn mean_is_statistically_centered() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(19);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }
}
