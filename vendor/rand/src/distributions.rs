//! Distributions mirroring `rand::distributions`: `Standard`, `Uniform`,
//! and the `SampleUniform`/`SampleRange` machinery behind `Rng::gen_range`.

use crate::Rng;

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution: unit-interval floats, full-range integers,
/// fair bools.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f32> for Standard {
    fn sample<R: Rng>(&self, rng: &mut R) -> f32 {
        // 24 high-quality mantissa bits -> [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        // 53 mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, u128 => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64, i128 => next_u64,
);

/// Uniform-distribution machinery (`rand::distributions::uniform`).
pub mod uniform {
    use super::Rng;

    /// Types that can be sampled uniformly from a range.
    pub trait SampleUniform: Sized + Copy + PartialOrd {
        /// Uniform draw from `[low, high)`.
        ///
        /// # Panics
        ///
        /// Panics if `low >= high`.
        fn sample_half_open<R: Rng>(low: Self, high: Self, rng: &mut R) -> Self;

        /// Uniform draw from `[low, high]`.
        ///
        /// # Panics
        ///
        /// Panics if `low > high`.
        fn sample_inclusive<R: Rng>(low: Self, high: Self, rng: &mut R) -> Self;
    }

    macro_rules! uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: Rng>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low < high, "gen_range: empty range {low}..{high}");
                    let unit: $t = super::Distribution::<$t>::sample(&super::Standard, rng);
                    // unit in [0,1): result stays strictly below `high` except
                    // for pathological rounding at extreme magnitudes; clamp.
                    let v = low + unit * (high - low);
                    if v >= high { low } else { v }
                }

                fn sample_inclusive<R: Rng>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low <= high, "gen_range: empty range {low}..={high}");
                    let unit: $t = super::Distribution::<$t>::sample(&super::Standard, rng);
                    low + unit * (high - low)
                }
            }
        )*};
    }

    uniform_float!(f32, f64);

    macro_rules! uniform_int {
        ($($t:ty as $wide:ty),* $(,)?) => {$(
            impl SampleUniform for $t {
                #[allow(unused_comparisons)]
                fn sample_half_open<R: Rng>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low < high, "gen_range: empty range {low}..{high}");
                    let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                    // Lemire-style unbiased bounded draw via 128-bit multiply.
                    let mut m = (rng.next_u64() as u128) * (span as u128);
                    let mut lo = m as u64;
                    if lo < span {
                        let threshold = span.wrapping_neg() % span;
                        while lo < threshold {
                            m = (rng.next_u64() as u128) * (span as u128);
                            lo = m as u64;
                        }
                    }
                    let offset = (m >> 64) as u64;
                    ((low as $wide).wrapping_add(offset as $wide)) as $t
                }

                #[allow(unused_comparisons)]
                fn sample_inclusive<R: Rng>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low <= high, "gen_range: empty range {low}..={high}");
                    if low == high {
                        return low;
                    }
                    let span_minus_1 = (high as $wide).wrapping_sub(low as $wide) as u64;
                    if span_minus_1 == u64::MAX {
                        return (rng.next_u64() as $wide).wrapping_add(low as $wide) as $t;
                    }
                    let span = span_minus_1 + 1;
                    let mut m = (rng.next_u64() as u128) * (span as u128);
                    let mut lo = m as u64;
                    if lo < span {
                        let threshold = span.wrapping_neg() % span;
                        while lo < threshold {
                            m = (rng.next_u64() as u128) * (span as u128);
                            lo = m as u64;
                        }
                    }
                    let offset = (m >> 64) as u64;
                    ((low as $wide).wrapping_add(offset as $wide)) as $t
                }
            }
        )*};
    }

    uniform_int!(
        u8 as u64, u16 as u64, u32 as u64, u64 as u64, usize as u64,
        i8 as i64, i16 as i64, i32 as i64, i64 as i64, isize as i64,
    );

    /// Ranges usable with `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draws one uniform sample from the range.
        fn sample_single<R: Rng>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
        fn sample_single<R: Rng>(self, rng: &mut R) -> T {
            T::sample_half_open(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample_single<R: Rng>(self, rng: &mut R) -> T {
            T::sample_inclusive(*self.start(), *self.end(), rng)
        }
    }
}

/// A pre-built uniform distribution over a fixed range.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T: uniform::SampleUniform> {
    low: T,
    high: T,
    inclusive: bool,
}

impl<T: uniform::SampleUniform> Uniform<T> {
    /// Uniform over `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` (checked at sample time).
    pub fn new(low: T, high: T) -> Self {
        Self {
            low,
            high,
            inclusive: false,
        }
    }

    /// Uniform over `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high` (checked at sample time).
    pub fn new_inclusive(low: T, high: T) -> Self {
        Self {
            low,
            high,
            inclusive: true,
        }
    }
}

impl<T: uniform::SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: Rng>(&self, rng: &mut R) -> T {
        if self.inclusive {
            T::sample_inclusive(self.low, self.high, rng)
        } else {
            T::sample_half_open(self.low, self.high, rng)
        }
    }
}
