//! `Serialize`/`Deserialize` implementations for std types.

use crate::{Deserialize, Error, Serialize, Value};

macro_rules! signed_int_impl {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = value.as_i64().ok_or_else(|| {
                    Error::new(format!(
                        "expected {}, found {}", stringify!($t), value.kind()
                    ))
                })?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::new(format!("{raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

signed_int_impl!(i8, i16, i32, i64, isize);

macro_rules! unsigned_int_impl {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = value.as_u64().ok_or_else(|| {
                    Error::new(format!(
                        "expected {}, found {}", stringify!($t), value.kind()
                    ))
                })?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::new(format!("{raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

unsigned_int_impl!(u8, u16, u32, u64, usize);

macro_rules! float_impl {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                value.as_f64().map(|v| v as $t).ok_or_else(|| {
                    Error::new(format!(
                        "expected {}, found {}", stringify!($t), value.kind()
                    ))
                })
            }
        }
    )*};
}

float_impl!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::new(format!("expected char, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_seq("Vec")?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value.as_seq("array")?;
        if items.len() != N {
            return Err(Error::new(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::new("array length mismatch"))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value.as_seq("tuple")?;
        if items.len() != 2 {
            return Err(Error::new(format!(
                "expected 2-tuple, found sequence of {}",
                items.len()
            )));
        }
        Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value.as_seq("tuple")?;
        if items.len() != 3 {
            return Err(Error::new(format!(
                "expected 3-tuple, found sequence of {}",
                items.len()
            )));
        }
        Ok((
            A::deserialize(&items[0])?,
            B::deserialize(&items[1])?,
            C::deserialize(&items[2])?,
        ))
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
