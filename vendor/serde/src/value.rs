//! The self-describing data model all (de)serialization flows through.

use crate::Error;

/// A serialized value: the intermediate representation between Rust types
/// and concrete formats (JSON via [`crate::json`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` / `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (all `iN` types widen to this).
    Int(i64),
    /// Unsigned integer (all `uN` types widen to this).
    UInt(u64),
    /// Floating point (both `f32` and `f64`).
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence (`Vec`, arrays, tuples).
    Seq(Vec<Value>),
    /// Ordered key/value map (structs, struct enum variants, maps).
    /// Insertion order is preserved so JSON output is deterministic.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Views this value as a map, or errors with `expected`.
    pub fn as_map(&self, expected: &str) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Map(entries) => Ok(entries),
            other => Err(Error::new(format!(
                "expected map for {expected}, found {}",
                other.kind()
            ))),
        }
    }

    /// Views this value as a sequence, or errors with `expected`.
    pub fn as_seq(&self, expected: &str) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(Error::new(format!(
                "expected sequence for {expected}, found {}",
                other.kind()
            ))),
        }
    }

    /// Looks up a field in a map value.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Signed-integer view, accepting any in-range numeric representation.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// Unsigned-integer view, accepting any in-range numeric representation.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// Float view; integers widen losslessly enough for this workspace.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(v) => Some(v),
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            _ => None,
        }
    }

    /// Short description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}
