//! Offline stand-in for `serde` (see `Cargo.toml` description).
//!
//! The data model is a self-describing [`Value`] tree; [`Serialize`] maps a
//! type into it and [`Deserialize`] maps it back. `serde::json` renders and
//! parses `Value` as JSON, giving the workspace a complete
//! serialize → JSON → parse → deserialize round trip with no external
//! dependencies. `#[derive(Serialize, Deserialize)]` comes from the sibling
//! `serde_derive` stand-in (enabled by the `derive` feature, matching the
//! upstream feature name).

mod error;
mod impls;
pub mod json;
mod value;

pub use error::Error;
pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Maps a type into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn serialize(&self) -> Value;
}

/// Reconstructs a type from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes from a [`Value`], reporting shape mismatches as
    /// [`Error`]s.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}
