//! Deserialization/parse error type.

use std::fmt;

/// An error produced while deserializing or parsing JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Wraps the message with additional location context.
    pub fn context(self, ctx: &str) -> Self {
        Self {
            message: format!("{ctx}: {}", self.message),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}
