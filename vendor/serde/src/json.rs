//! JSON rendering and parsing over the [`Value`] data model.
//!
//! Fills the role `serde_json` plays upstream (the registry-free build
//! cannot fetch it). Output is deterministic: map entries render in
//! insertion order and floats use Rust's shortest round-trip formatting.

use crate::{Deserialize, Error, Serialize, Value};

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> String {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    out
}

/// Serializes `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> String {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    out
}

/// Parses a JSON string and deserializes it into `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value(input)?;
    T::deserialize(&value)
}

/// Parses a JSON string into a raw [`Value`] tree.
pub fn parse_value(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => write_float(*v, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => write_block(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(&items[i], out, indent, depth + 1);
        }),
        Value::Map(entries) => write_block(out, indent, depth, '{', '}', entries.len(), |out, i| {
            let (key, val) = &entries[i];
            write_string(key, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(val, out, indent, depth + 1);
        }),
    }
}

fn write_block(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_float(v: f64, out: &mut String) {
    if v.is_nan() || v.is_infinite() {
        // JSON has no NaN/Inf; null matches serde_json's lossy behaviour.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Keep a trailing ".0" so the value parses back as a float.
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&v.to_string());
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.map(),
            Some(b'[') => self.seq(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are out of scope for this
                            // workspace's data; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar value.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u32), "42");
        assert_eq!(to_string(&-7i64), "-7");
        assert_eq!(to_string(&1.5f64), "1.5");
        assert_eq!(to_string(&2.0f64), "2.0");
        assert_eq!(to_string(&true), "true");
        assert_eq!(to_string(&"hi\n".to_string()), "\"hi\\n\"");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<String>("\"hi\\n\"").unwrap(), "hi\n");
    }

    #[test]
    fn round_trips_collections() {
        let v = vec![1u64, 2, 3];
        let text = to_string(&v);
        assert_eq!(text, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&text).unwrap(), v);

        let arr = [1.0f64, 2.5];
        let back: [f64; 2] = from_str(&to_string(&arr)).unwrap();
        assert_eq!(back, arr);
    }

    #[test]
    fn parses_nested_maps() {
        let value = parse_value(r#"{"a": {"b": [1, 2]}, "c": null}"#).unwrap();
        let inner = value.field("a").unwrap().field("b").unwrap();
        assert_eq!(inner, &Value::Seq(vec![Value::UInt(1), Value::UInt(2)]));
        assert_eq!(value.field("c"), Some(&Value::Null));
    }

    #[test]
    fn pretty_output_is_indented() {
        let value = Value::Map(vec![("k".into(), Value::UInt(1))]);
        assert_eq!(to_string_pretty(&value), "{\n  \"k\": 1\n}");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("4 2").is_err());
        assert!(parse_value("{\"a\":}").is_err());
        assert!(parse_value("[1,").is_err());
        assert!(from_str::<u8>("300").is_err());
    }
}
