//! Offline stand-in for `criterion` (see `Cargo.toml` description).
//!
//! Each benchmark runs a short warmup, then `sample_size` timed samples of a
//! fixed iteration batch, and reports the median per-iteration time. This is
//! deliberately lightweight: good enough to spot order-of-magnitude
//! regressions in CI-less environments, not a statistical harness.

use std::time::{Duration, Instant};

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.default_sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Mirrors upstream's builder; accepted and ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Mirrors upstream's final summary hook; nothing to do here.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl IntoBenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Finishes the group (upstream renders reports here; we do not).
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark, `"function/parameter"`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id: a `BenchmarkId` or a plain string.
pub trait IntoBenchmarkId {
    /// The rendered id label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back runs of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate the batch size so one sample costs roughly a millisecond.
    let mut iters: u64 = 1;
    loop {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if bencher.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples.push(bencher.elapsed);
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let per_iter = median.as_nanos() as f64 / iters as f64;
    println!("bench: {label:<48} {} / iter", format_ns(per_iter));
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.2} s ", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_elapsed_time() {
        let mut bencher = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        bencher.iter(|| std::hint::black_box(3u64).wrapping_mul(7));
        assert!(bencher.elapsed > Duration::ZERO || bencher.iters == 100);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(
            BenchmarkId::new("mvm", 128).into_benchmark_id(),
            "mvm/128"
        );
        assert_eq!(BenchmarkId::from_parameter("x").into_benchmark_id(), "x");
    }
}
