//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! simplified Value-based serde stand-in in `vendor/serde`. The registry-free
//! build cannot fetch `syn`/`quote`, so parsing is done directly over
//! `proc_macro::TokenStream`: enough to handle the shapes this workspace
//! uses — non-generic structs (named, tuple, unit) and enums with unit,
//! tuple, and struct variants, externally tagged like upstream serde.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_serialize(&shape).parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_deserialize(&shape).parse().expect("generated Deserialize impl must parse")
}

enum Shape {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i, "`struct` or `enum`");
    let name = expect_ident(&tokens, &mut i, "type name");
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic types ({name})");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: split_top_level(g.stream()).len(),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: split_top_level(g.stream())
                    .into_iter()
                    .map(parse_variant)
                    .collect(),
            },
            other => panic!("unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("serde stand-in derive supports struct/enum only, found `{other}`"),
    }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        // pub(crate) / pub(super) carry a parenthesized scope.
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize, what: &str) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected {what}, found {other:?}"),
    }
}

/// Splits a token stream at commas that sit outside any `<...>` nesting.
/// Bracket/brace/paren nesting is already atomic (`TokenTree::Group`), so
/// only generic angle brackets need explicit depth tracking.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tree in stream {
        if let TokenTree::Punct(p) = &tree {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tree);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Extracts field names from the body of a braced struct or struct variant.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attributes(&chunk, &mut i);
            skip_visibility(&chunk, &mut i);
            expect_ident(&chunk, &mut i, "field name")
        })
        .collect()
}

fn parse_variant(chunk: Vec<TokenTree>) -> Variant {
    let mut i = 0;
    skip_attributes(&chunk, &mut i);
    let name = expect_ident(&chunk, &mut i, "variant name");
    let kind = match chunk.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            VariantKind::Tuple(split_top_level(g.stream()).len())
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            VariantKind::Struct(parse_named_fields(g.stream()))
        }
        // Unit variant, possibly with `= discriminant` (ignored).
        _ => VariantKind::Unit,
    };
    Variant { name, kind }
}

fn gen_serialize(shape: &Shape) -> String {
    let mut out = String::new();
    match shape {
        Shape::NamedStruct { name, fields } => {
            let mut body = String::new();
            for field in fields {
                let _ = write!(
                    body,
                    "({field:?}.to_string(), ::serde::Serialize::serialize(&self.{field})),"
                );
            }
            let _ = write!(
                out,
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{body}])\n\
                     }}\n\
                 }}"
            );
        }
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                // Newtype structs serialize transparently, like upstream.
                "::serde::Serialize::serialize(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                    .collect();
                format!("::serde::Value::Seq(vec![{}])", items.join(","))
            };
            let _ = write!(
                out,
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            );
        }
        Shape::UnitStruct { name } => {
            let _ = write!(
                out,
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
                 }}"
            );
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),"
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            arms,
                            "{name}::{vname}(f0) => ::serde::Value::Map(vec![\
                                ({vname:?}.to_string(), ::serde::Serialize::serialize(f0))]),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        let _ = write!(
                            arms,
                            "{name}::{vname}({}) => ::serde::Value::Map(vec![\
                                ({vname:?}.to_string(), ::serde::Value::Seq(vec![{}]))]),",
                            binds.join(","),
                            items.join(",")
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let binds = fields.join(",");
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("({f:?}.to_string(), ::serde::Serialize::serialize({f}))")
                            })
                            .collect();
                        let _ = write!(
                            arms,
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(vec![\
                                ({vname:?}.to_string(), ::serde::Value::Map(vec![{}]))]),",
                            items.join(",")
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            );
        }
    }
    out
}

fn gen_deserialize(shape: &Shape) -> String {
    let mut out = String::new();
    match shape {
        Shape::NamedStruct { name, fields } => {
            let mut body = String::new();
            for field in fields {
                let _ = write!(
                    body,
                    "{field}: match value.field({field:?}) {{\n\
                         Some(v) => ::serde::Deserialize::deserialize(v)\n\
                             .map_err(|e| e.context(concat!({name:?}, \".\", {field:?})))?,\n\
                         None => return Err(::serde::Error::new(\n\
                             concat!(\"missing field `\", {field:?}, \"` in \", {name:?}))),\n\
                     }},"
                );
            }
            let _ = write!(
                out,
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         let _ = value.as_map({name:?})?;\n\
                         Ok(Self {{ {body} }})\n\
                     }}\n\
                 }}"
            );
        }
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "Ok(Self(::serde::Deserialize::deserialize(value)?))".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                    .collect();
                format!(
                    "let items = value.as_seq({name:?})?;\n\
                     if items.len() != {arity} {{\n\
                         return Err(::serde::Error::new(format!(\n\
                             \"expected {arity} elements for {name}, found {{}}\", items.len())));\n\
                     }}\n\
                     Ok(Self({}))",
                    items.join(",")
                )
            };
            let _ = write!(
                out,
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            );
        }
        Shape::UnitStruct { name } => {
            let _ = write!(
                out,
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(_value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         Ok(Self)\n\
                     }}\n\
                 }}"
            );
        }
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(unit_arms, "{vname:?} => return Ok({name}::{vname}),");
                    }
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            tagged_arms,
                            "{vname:?} => Ok({name}::{vname}(\
                                ::serde::Deserialize::deserialize(inner)?)),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                            .collect();
                        let _ = write!(
                            tagged_arms,
                            "{vname:?} => {{\n\
                                 let items = inner.as_seq(concat!({name:?}, \"::\", {vname:?}))?;\n\
                                 if items.len() != {n} {{\n\
                                     return Err(::serde::Error::new(format!(\n\
                                         \"expected {n} elements for {name}::{vname}, found {{}}\",\n\
                                         items.len())));\n\
                                 }}\n\
                                 Ok({name}::{vname}({}))\n\
                             }},",
                            items.join(",")
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let mut body = String::new();
                        for field in fields {
                            let _ = write!(
                                body,
                                "{field}: match inner.field({field:?}) {{\n\
                                     Some(v) => ::serde::Deserialize::deserialize(v)?,\n\
                                     None => return Err(::serde::Error::new(\n\
                                         concat!(\"missing field `\", {field:?}, \"` in \",\n\
                                                 {name:?}, \"::\", {vname:?}))),\n\
                                 }},"
                            );
                        }
                        let _ = write!(
                            tagged_arms,
                            "{vname:?} => Ok({name}::{vname} {{ {body} }}),"
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         if let ::serde::Value::Str(tag) = value {{\n\
                             match tag.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => return Err(::serde::Error::new(format!(\n\
                                     \"unknown variant `{{other}}` of {name}\"))),\n\
                             }}\n\
                         }}\n\
                         let entries = value.as_map({name:?})?;\n\
                         if entries.len() != 1 {{\n\
                             return Err(::serde::Error::new(concat!(\n\
                                 \"expected single-entry variant map for \", {name:?})));\n\
                         }}\n\
                         let (tag, inner) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\n\
                             other => Err(::serde::Error::new(format!(\n\
                                 \"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            );
        }
    }
    out
}
